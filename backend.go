package genasm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"genasm/internal/cigar"
	"genasm/internal/dna"
	"genasm/internal/gpu"
	"genasm/internal/gpualign"
)

// singlePairAligner is an optional fast path a Backend may implement:
// the Engine's one-pair entry points (Align, single-candidate MapAlign
// items) use it to skip batch assembly. Purely an optimization —
// alignOne must be observably identical to AlignBatch of one pair.
type singlePairAligner interface {
	alignOne(ctx context.Context, p Pair) (Result, error)
}

// cpuBackend pools per-goroutine Aligners (the kernels keep scratch, so
// an Aligner is single-goroutine; the pool amortizes construction across
// calls instead of rebuilding one per AlignBatch worker).
type cpuBackend struct {
	threads int
	pool    sync.Pool

	batches atomic.Uint64
	pairs   atomic.Uint64
}

func newCPUBackend(cfg Config, threads int) (*cpuBackend, error) {
	if _, err := New(cfg); err != nil { // validate eagerly, once
		return nil, err
	}
	b := &cpuBackend{threads: threads}
	b.pool.New = func() any {
		a, err := New(cfg)
		if err != nil {
			panic(err) // unreachable: cfg validated in newCPUBackend
		}
		return a
	}
	return b, nil
}

func (b *cpuBackend) Capabilities() Capabilities {
	// A few pairs per worker amortize pool churn and smooth out per-pair
	// length variance across the fan-out.
	return Capabilities{PreferredBatch: 4 * b.threads, Parallelism: b.threads}
}

func (b *cpuBackend) Stats() BackendStats {
	return BackendStats{Name: "cpu", Batches: b.batches.Load(), Pairs: b.pairs.Load()}
}

func (b *cpuBackend) alignOne(ctx context.Context, p Pair) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// The single-pair fast path counts toward Pairs only: Batches stays
	// a measure of AlignBatch executions, so pairs-per-batch ratios from
	// Stats keep meaning batching efficiency.
	b.pairs.Add(1)
	a := b.pool.Get().(*Aligner)
	defer b.pool.Put(a)
	return a.Align(p.Query, p.Ref)
}

func (b *cpuBackend) AlignBatch(ctx context.Context, _ Config, pairs []Pair) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.batches.Add(1)
	b.pairs.Add(uint64(len(pairs)))
	if len(pairs) == 0 {
		return []Result{}, nil
	}
	threads := min(b.threads, len(pairs))
	results := make([]Result, len(pairs))
	if threads <= 1 {
		a := b.pool.Get().(*Aligner)
		defer b.pool.Put(a)
		for i := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := a.Align(pairs[i].Query, pairs[i].Ref)
			if err != nil {
				return nil, fmt.Errorf("pair %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int, len(pairs))
	for i := range pairs {
		jobs <- i
	}
	close(jobs)
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			a := b.pool.Get().(*Aligner)
			defer b.pool.Put(a)
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[t] = err
					return
				}
				r, err := a.Align(pairs[i].Query, pairs[i].Ref)
				if err != nil {
					errs[t] = fmt.Errorf("pair %d: %w", i, err)
					cancel() // stop the other workers promptly
					return
				}
				results[i] = r
			}
		}(t)
	}
	wg.Wait()
	// Report a real alignment failure over a cancellation it triggered.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return results, nil
}

// gpuBackend wraps the simulated-GPU batch path. A launch is monolithic
// (as a real device launch would be), so cancellation is honoured at
// launch boundaries, not within one.
type gpuBackend struct {
	gcfg gpualign.Config
	pen  cigar.AffinePenalties

	batches atomic.Uint64
	pairs   atomic.Uint64

	mu   sync.Mutex
	last GPUStats
	has  bool
}

func newGPUBackend(cfg Config, blocksPerSM int) (*gpuBackend, error) {
	gcfg := gpualign.DefaultConfig(gpualign.Improved)
	switch cfg.Algorithm {
	case GenASM:
	case GenASMUnimproved:
		gcfg.Algorithm = gpualign.Unimproved
	default:
		return nil, fmt.Errorf("genasm: algorithm %q has no GPU kernel", cfg.Algorithm)
	}
	if cfg.DisableSENE || cfg.DisableDENT || cfg.DisableET {
		return nil, fmt.Errorf("genasm: ablation toggles are CPU-only")
	}
	gcfg.W, gcfg.O, gcfg.InitialK = cfg.WindowSize, cfg.Overlap, cfg.ErrorK
	if blocksPerSM > 0 {
		gcfg.TargetBlocksPerSM = blocksPerSM
	}
	gcfg.Device = gpu.A6000()
	// Validate the window geometry eagerly with a throwaway launch config
	// check: the same Config constructor the CPU path uses.
	if _, err := New(Config{Algorithm: cfg.Algorithm, WindowSize: cfg.WindowSize,
		Overlap: cfg.Overlap, ErrorK: cfg.ErrorK}); err != nil {
		return nil, err
	}
	return &gpuBackend{gcfg: gcfg, pen: cfg.penalties()}, nil
}

func (b *gpuBackend) Capabilities() Capabilities {
	// One full wave of resident thread blocks (one pair per block) is the
	// launch size that saturates the device without queueing extra waves.
	wave := b.gcfg.Device.SMs * b.gcfg.TargetBlocksPerSM
	return Capabilities{PreferredBatch: wave, Parallelism: wave}
}

func (b *gpuBackend) Stats() BackendStats {
	st := BackendStats{Name: "gpu", Batches: b.batches.Load(), Pairs: b.pairs.Load()}
	b.mu.Lock()
	if b.has {
		last := b.last
		st.GPU = &last
	}
	b.mu.Unlock()
	return st
}

func (b *gpuBackend) AlignBatch(ctx context.Context, _ Config, pairs []Pair) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.batches.Add(1)
	b.pairs.Add(uint64(len(pairs)))
	jobs := make([]gpualign.Pair, len(pairs))
	for i, p := range pairs {
		jobs[i] = gpualign.Pair{Query: dna.EncodeSeq(p.Query), Ref: dna.EncodeSeq(p.Ref)}
	}
	batch, err := gpualign.AlignBatch(jobs, b.gcfg)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(pairs))
	for i, r := range batch.Results {
		results[i] = Result{
			Distance:    r.Distance,
			Score:       r.Cigar.AffineScore(b.pen),
			Cigar:       r.Cigar.String(),
			RefConsumed: r.RefConsumed,
		}
	}
	st := GPUStats{
		Device:         batch.Launch.Device,
		Seconds:        batch.Launch.Seconds,
		MakespanCycles: batch.Launch.MakespanCycles,
		BlocksPerSM:    batch.Launch.BlocksPerSM,
		SharedBlocks:   batch.SharedBlocks,
		SpilledBlocks:  batch.SpilledBlocks,
		PairsPerSecond: batch.Launch.Throughput(),
	}
	b.mu.Lock()
	b.last, b.has = st, true
	b.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
