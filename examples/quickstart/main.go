// Quickstart: align one noisy read against a candidate reference region
// with every algorithm in the library and compare their answers.
package main

import (
	"context"
	"fmt"
	"log"

	"genasm"
)

func main() {
	ctx := context.Background()

	// A 120 bp query with a substitution, a 3 bp deletion and a 2 bp
	// insertion relative to the reference region.
	ref := []byte("ACGTACGGTTAACCGGAATTCCGGTTAACCAGTCAGTCAGTCGGATCGATCGATCGTTAA" +
		"CCGGAATTCCGGTTAACCAGTCAGTCAGTCGGATCGATCGATCGAACCGGTTACGTACGT" +
		"TTTTTTTT") // trailing slack a candidate region would have
	query := []byte("ACGTACGGTTAACCGGAATTCCGGTTAACCAGTCAGTCAGTCGGATCGATCGATCGTTAA" +
		"CCGGTATTCCGGACCAGTCAGTCAGTCGGCCATCGATCGATCGAACCGGTTACGTACGT")

	for _, algo := range genasm.Algorithms() {
		eng, err := genasm.NewEngine(genasm.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Align(ctx, query, ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s distance=%-3d score=%-4d refConsumed=%-3d cigar=%s\n",
			algo, res.Distance, res.Score, res.RefConsumed, res.Cigar)
	}

	// The GenASM algorithms align the query against a *prefix* of the
	// candidate region (trailing slack is free); the global aligners
	// consume the whole region. Note how the improved and unimproved
	// GenASM answers are identical: the paper's improvements change the
	// memory behaviour, not the output.
}
