// Gpubatch runs the paper's GPU experiment on the simulated A6000 through
// the Engine API: the same candidate pairs aligned by the improved and
// unimproved GenASM GPU kernels, showing the shared-memory-fit mechanism
// behind the speedup.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"genasm"
)

func main() {
	ctx := context.Background()

	ref := genasm.GenerateGenome(800_000, 3)
	reads, err := genasm.SimulateLongReads(ref, 40, 10_000, 0.10, 3)
	if err != nil {
		log.Fatal(err)
	}
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}
	var pairs []genasm.Pair
	for _, r := range reads {
		for _, c := range mapper.Candidates(r.Seq) {
			q := r.Seq
			if c.RevComp {
				q = genasm.ReverseComplement(q)
			}
			pairs = append(pairs, genasm.Pair{Query: q, Ref: mapper.Region(c)})
		}
	}
	fmt.Printf("launching %d alignment blocks on the device model...\n\n", len(pairs))

	launch := func(algo genasm.Algorithm) ([]genasm.Result, genasm.GPUStats) {
		eng, err := genasm.NewEngine(genasm.WithBackendName("gpu"), genasm.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.AlignBatch(ctx, pairs)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.BackendStats()
		if st.GPU == nil {
			log.Fatal("no device stats after launch")
		}
		return res, *st.GPU
	}
	impRes, imp := launch(genasm.GenASM)
	unimpRes, unimp := launch(genasm.GenASMUnimproved)

	// The improvements change memory behaviour, never answers.
	for i := range impRes {
		if impRes[i].Distance != unimpRes[i].Distance {
			log.Fatalf("pair %d: improved %d != unimproved %d",
				i, impRes[i].Distance, unimpRes[i].Distance)
		}
	}

	show := func(name string, st genasm.GPUStats) {
		fmt.Printf("%-22s %10v  %8.0f pairs/s  blocks/SM=%d  shared-fit=%d  spilled=%d\n",
			name, time.Duration(st.Seconds*float64(time.Second)).Round(time.Microsecond),
			st.PairsPerSecond, st.BlocksPerSM, st.SharedBlocks, st.SpilledBlocks)
	}
	show("improved kernel", imp)
	show("unimproved kernel", unimp)
	fmt.Printf("\nimproved-vs-unimproved GPU speedup: %.1fx (paper: 5.9x)\n",
		unimp.Seconds/imp.Seconds)
	fmt.Println("mechanism: the improved DP working set fits each block's shared-memory")
	fmt.Println("allocation; the unimproved working set spills to the L2/DRAM hierarchy.")
}
