// Gpubatch runs the paper's GPU experiment on the simulated A6000: the
// same candidate pairs aligned by the improved and unimproved GenASM GPU
// kernels, showing the shared-memory-fit mechanism behind the speedup.
package main

import (
	"fmt"
	"log"
	"time"

	"genasm"
)

func main() {
	ref := genasm.GenerateGenome(800_000, 3)
	reads, err := genasm.SimulateLongReads(ref, 40, 10_000, 0.10, 3)
	if err != nil {
		log.Fatal(err)
	}
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}
	var pairs []genasm.Pair
	for _, r := range reads {
		for _, c := range mapper.Candidates(r.Seq) {
			q := r.Seq
			if c.RevComp {
				q = genasm.ReverseComplement(q)
			}
			pairs = append(pairs, genasm.Pair{Query: q, Ref: ref[c.Start:c.End]})
		}
	}
	fmt.Printf("launching %d alignment blocks on the device model...\n\n", len(pairs))

	impRes, imp, err := genasm.AlignBatchGPU(genasm.GPUConfig{Algorithm: genasm.GenASM}, pairs)
	if err != nil {
		log.Fatal(err)
	}
	unimpRes, unimp, err := genasm.AlignBatchGPU(genasm.GPUConfig{Algorithm: genasm.GenASMUnimproved}, pairs)
	if err != nil {
		log.Fatal(err)
	}

	// The improvements change memory behaviour, never answers.
	for i := range impRes {
		if impRes[i].Distance != unimpRes[i].Distance {
			log.Fatalf("pair %d: improved %d != unimproved %d",
				i, impRes[i].Distance, unimpRes[i].Distance)
		}
	}

	show := func(name string, st genasm.GPUStats) {
		fmt.Printf("%-22s %10v  %8.0f pairs/s  blocks/SM=%d  shared-fit=%d  spilled=%d\n",
			name, time.Duration(st.Seconds*float64(time.Second)).Round(time.Microsecond),
			st.PairsPerSecond, st.BlocksPerSM, st.SharedBlocks, st.SpilledBlocks)
	}
	show("improved kernel", imp)
	show("unimproved kernel", unimp)
	fmt.Printf("\nimproved-vs-unimproved GPU speedup: %.1fx (paper: 5.9x)\n",
		unimp.Seconds/imp.Seconds)
	fmt.Println("mechanism: the improved DP working set fits each block's shared-memory")
	fmt.Println("allocation; the unimproved working set spills to the L2/DRAM hierarchy.")
}
