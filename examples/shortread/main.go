// Shortread demonstrates the "both short and long reads" claim: align an
// Illumina-like batch (150 bp, 1% error) and verify GenASM's distances
// against Edlib's exact global distances at candidate loci.
package main

import (
	"fmt"
	"log"

	"genasm"
)

func main() {
	ref := genasm.GenerateGenome(500_000, 7)
	reads, err := genasm.SimulateShortReads(ref, 2_000, 150, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}

	var pairs []genasm.Pair
	for _, r := range reads {
		cands := mapper.Candidates(r.Seq)
		if len(cands) == 0 {
			continue
		}
		q := r.Seq
		if cands[0].RevComp {
			q = genasm.ReverseComplement(q)
		}
		pairs = append(pairs, genasm.Pair{Query: q, Ref: ref[cands[0].Start:cands[0].End]})
	}
	fmt.Printf("%d/%d short reads located; aligning with GenASM and Edlib...\n", len(pairs), len(reads))

	gen, err := genasm.AlignBatch(genasm.Config{Algorithm: genasm.GenASM}, pairs, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Edlib aligns globally, so give it the GenASM-consumed prefix: the
	// two must then agree exactly on these low-error windows.
	trimmed := make([]genasm.Pair, len(pairs))
	for i, p := range pairs {
		trimmed[i] = genasm.Pair{Query: p.Query, Ref: p.Ref[:gen[i].RefConsumed]}
	}
	edl, err := genasm.AlignBatch(genasm.Config{Algorithm: genasm.Edlib}, trimmed, 0)
	if err != nil {
		log.Fatal(err)
	}

	agree, worse := 0, 0
	histo := map[int]int{}
	for i := range gen {
		histo[gen[i].Distance]++
		switch {
		case gen[i].Distance == edl[i].Distance:
			agree++
		case gen[i].Distance > edl[i].Distance:
			worse++
		}
	}
	fmt.Printf("distance agreement with Edlib: %d/%d exact, %d windowing-suboptimal\n",
		agree, len(gen), worse)
	fmt.Println("distance histogram (edits per 150 bp read):")
	for d := 0; d <= 8; d++ {
		if histo[d] > 0 {
			fmt.Printf("  %d edits: %d reads\n", d, histo[d])
		}
	}
}
