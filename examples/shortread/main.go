// Shortread demonstrates the "both short and long reads" claim: stream an
// Illumina-like batch (150 bp, 1% error) through map-align with GenASM,
// then verify GenASM's distances against Edlib's exact global distances
// on the consumed spans.
package main

import (
	"context"
	"fmt"
	"log"

	"genasm"
)

func main() {
	ctx := context.Background()

	ref := genasm.GenerateGenome(500_000, 7)
	reads, err := genasm.SimulateShortReads(ref, 2_000, 150, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := genasm.NewEngine(
		genasm.WithAlgorithm(genasm.GenASM),
		genasm.WithMapper(mapper),
	)
	if err != nil {
		log.Fatal(err)
	}

	in := make([]genasm.Read, len(reads))
	for i, r := range reads {
		in[i] = genasm.Read{Name: r.Name, Seq: r.Seq}
	}
	out, err := gen.MapAlign(ctx, genasm.StreamReads(in))
	if err != nil {
		log.Fatal(err)
	}

	// Collect GenASM's answers and build the Edlib re-check batch: Edlib
	// aligns globally, so give it the GenASM-consumed prefix — the two
	// must then agree exactly on these low-error windows.
	var located []genasm.MappedAlignment
	var trimmed []genasm.Pair
	for m := range out {
		if m.Err != nil {
			log.Fatal(m.Err)
		}
		if m.Unmapped {
			continue
		}
		region := mapper.Region(m.Candidate)
		q := m.Read.Seq
		if m.Candidate.RevComp {
			q = genasm.ReverseComplement(q)
		}
		located = append(located, m)
		trimmed = append(trimmed, genasm.Pair{Query: q, Ref: region[:m.Result.RefConsumed]})
	}
	fmt.Printf("%d/%d short reads located; re-checking with Edlib...\n", len(located), len(reads))

	edlibEng, err := genasm.NewEngine(genasm.WithAlgorithm(genasm.Edlib))
	if err != nil {
		log.Fatal(err)
	}
	edl, err := edlibEng.AlignBatch(ctx, trimmed)
	if err != nil {
		log.Fatal(err)
	}

	agree, worse := 0, 0
	histo := map[int]int{}
	for i, m := range located {
		histo[m.Result.Distance]++
		switch {
		case m.Result.Distance == edl[i].Distance:
			agree++
		case m.Result.Distance > edl[i].Distance:
			worse++
		}
	}
	fmt.Printf("distance agreement with Edlib: %d/%d exact, %d windowing-suboptimal\n",
		agree, len(located), worse)
	fmt.Println("distance histogram (edits per 150 bp read):")
	for d := 0; d <= 8; d++ {
		if histo[d] > 0 {
			fmt.Printf("  %d edits: %d reads\n", d, histo[d])
		}
	}
}
