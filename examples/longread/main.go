// Longread runs the paper's full pipeline at laptop scale: synthesize a
// repeat-bearing genome, simulate PacBio-like 10 kb reads (PBSIM2-style
// error model), find candidate locations by minimizer chaining (minimap2
// -P style), and align every (read, candidate) pair with improved GenASM.
package main

import (
	"fmt"
	"log"
	"time"

	"genasm"
)

func main() {
	const (
		genomeLen = 1_000_000
		nReads    = 50
		readLen   = 10_000
		errorRate = 0.10
	)

	fmt.Printf("generating %d bp genome...\n", genomeLen)
	ref := genasm.GenerateGenome(genomeLen, 42)

	fmt.Printf("simulating %d reads of ~%d bp at %.0f%% error...\n", nReads, readLen, errorRate*100)
	reads, err := genasm.SimulateLongReads(ref, nReads, readLen, errorRate, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("indexing reference and locating candidates...")
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}

	// Align each read at its best candidate location (its primary
	// alignment). The eval harness (cmd/genasm-eval) additionally aligns
	// every secondary chain, as the paper's -P extraction does.
	var pairs []genasm.Pair
	var truth []int // ground-truth error count per pair
	for _, r := range reads {
		cands := mapper.Candidates(r.Seq)
		if len(cands) == 0 {
			continue
		}
		c := cands[0]
		q := r.Seq
		if c.RevComp {
			q = genasm.ReverseComplement(q)
		}
		pairs = append(pairs, genasm.Pair{Query: q, Ref: ref[c.Start:c.End]})
		truth = append(truth, r.Errors)
	}
	fmt.Printf("aligning %d primary candidate pairs with improved GenASM...\n", len(pairs))

	start := time.Now()
	results, err := genasm.AlignBatch(genasm.Config{Algorithm: genasm.GenASM}, pairs, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var bases, dist int
	good := 0
	for i, res := range results {
		bases += len(pairs[i].Query)
		dist += res.Distance
		// The alignment cost should be close to the number of
		// simulated errors.
		if res.Distance <= truth[i]+truth[i]/4+16 {
			good++
		}
	}
	fmt.Printf("\naligned %d pairs (%d bases) in %v  (%.0f pairs/s, %.1f Mbases/s)\n",
		len(pairs), bases, elapsed.Round(time.Millisecond),
		float64(len(pairs))/elapsed.Seconds(), float64(bases)/elapsed.Seconds()/1e6)
	fmt.Printf("mean distance per base: %.4f (simulated error rate %.2f)\n",
		float64(dist)/float64(bases), errorRate)
	fmt.Printf("alignments within tolerance of ground truth: %d/%d\n", good, len(pairs))
}
