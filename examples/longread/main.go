// Longread runs the paper's full pipeline at laptop scale with the
// streaming Engine API: synthesize a repeat-bearing genome, simulate
// PacBio-like 10 kb reads (PBSIM2-style error model), and stream them
// through Engine.MapAlign, which locates candidates by minimizer chaining
// (minimap2 -P style) and aligns each read at its best candidate with
// improved GenASM — emitting results in input order as they finish.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"genasm"
)

func main() {
	const (
		genomeLen = 1_000_000
		nReads    = 50
		readLen   = 10_000
		errorRate = 0.10
	)
	ctx := context.Background()

	fmt.Printf("generating %d bp genome...\n", genomeLen)
	ref := genasm.GenerateGenome(genomeLen, 42)

	fmt.Printf("simulating %d reads of ~%d bp at %.0f%% error...\n", nReads, readLen, errorRate*100)
	reads, err := genasm.SimulateLongReads(ref, nReads, readLen, errorRate, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("indexing reference...")
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := genasm.NewEngine(
		genasm.WithAlgorithm(genasm.GenASM),
		genasm.WithMapper(mapper),
	)
	if err != nil {
		log.Fatal(err)
	}

	in := make([]genasm.Read, len(reads))
	for i, r := range reads {
		in[i] = genasm.Read{Name: r.Name, Seq: r.Seq}
	}
	fmt.Printf("streaming %d reads through map-align (improved GenASM)...\n", len(in))

	start := time.Now()
	out, err := eng.MapAlign(ctx, genasm.StreamReads(in))
	if err != nil {
		log.Fatal(err)
	}
	var pairs, bases, dist, good, unmapped int
	for m := range out {
		if m.Err != nil {
			log.Fatal(m.Err)
		}
		if m.Unmapped {
			unmapped++
			continue
		}
		pairs++
		bases += len(m.Read.Seq)
		dist += m.Result.Distance
		// The alignment cost should be close to the number of simulated
		// errors (ground truth rides along via the input index).
		truth := reads[m.ReadIndex].Errors
		if m.Result.Distance <= truth+truth/4+16 {
			good++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\naligned %d reads (%d bases, %d unmapped) in %v  (%.0f reads/s, %.1f Mbases/s)\n",
		pairs, bases, unmapped, elapsed.Round(time.Millisecond),
		float64(pairs)/elapsed.Seconds(), float64(bases)/elapsed.Seconds()/1e6)
	fmt.Printf("mean distance per base: %.4f (simulated error rate %.2f)\n",
		float64(dist)/float64(bases), errorRate)
	fmt.Printf("alignments within tolerance of ground truth: %d/%d\n", good, pairs)
}
