// Package genasm is a genomic sequence alignment library and
// read-mapping pipeline built around an improved GenASM algorithm
// (Lindegger et al., "Algorithmic Improvement and GPU Acceleration of
// the GenASM Algorithm", 2022).
//
// GenASM is a Bitap-based approximate string matching algorithm with
// fine-grained bit-level parallelism. This library implements the paper's
// three algorithmic improvements — entry compression (store only the
// bitwise AND of the DP edge bitvectors), early termination of error-level
// rows, and discarding of traceback-unreachable entries — which shrink the
// DP working set by an order of magnitude and let whole alignment windows
// live in on-chip memory.
//
// # The Engine
//
// All alignment runs through a genasm.Engine: a concurrency-safe,
// context-aware service constructed with functional options. The same
// configuration produces bit-identical results on every backend — the
// "cpu" backend pools per-goroutine aligners, the "gpu" backend executes
// the same kernels on a simulated SIMT device (an NVIDIA A6000 model)
// with a shared-memory / L2 / DRAM cost model, and the "multi" composite
// shards one batch across any set of registered backends.
//
//	eng, _ := genasm.NewEngine(
//		genasm.WithAlgorithm(genasm.GenASM),
//		genasm.WithBackendName("cpu"), // or "gpu", "multi(cpu,gpu)", ...
//	)
//	res, _ := eng.Align(ctx, []byte("ACGTACGT..."), []byte("ACGTTACGT..."))
//	fmt.Println(res.Distance, res.Cigar)
//
// Batches are context-cancellable and index-aligned with their input:
//
//	results, err := eng.AlignBatch(ctx, pairs)
//
// See ExampleNewEngine and ExampleEngine_AlignBatch for runnable
// versions of both.
//
// # The read-mapping pipeline
//
// The full map-then-align pipeline (minimizer/chaining candidate
// location followed by best-candidate alignment) streams with per-item
// errors and ordered emission:
//
//	mapper, _ := genasm.NewMapper(ref)
//	eng, _ := genasm.NewEngine(genasm.WithMapper(mapper))
//	out, _ := eng.MapAlign(ctx, genasm.StreamReads(reads))
//	for m := range out {
//		if m.Err != nil || m.Unmapped { ... continue ... }
//		use(m.Result)
//	}
//
// Each MappedAlignment carries the candidate location, the total
// candidate count and the runner-up chain score, which is everything a
// consumer needs to derive SAM FLAG/POS/MAPQ. The internal/samfmt
// package does exactly that: cmd/genasm-map is the end-to-end binary
// (FASTA reference + FASTA/FASTQ reads in, SAM or PAF out), and the
// HTTP server streams the same records. See ExampleEngine_MapAlign.
//
// # Library contents
//
//   - the improved GenASM aligner (Algorithm GenASM) for short and long
//     reads, plus the unimproved MICRO'20 formulation (GenASMUnimproved)
//     and reproductions of Edlib, KSW2 and Smith-Waterman-Gotoh as
//     baselines, all behind the one Engine;
//   - a public backend layer (below): "cpu", "gpu" and the sharding
//     composite "multi" built in, third-party backends registered by
//     name, bit-identical results required of all of them;
//   - workload tooling: synthetic genome generation (GenerateGenome), a
//     PBSIM2-like read simulator (SimulateLongReads, SimulateShortReads)
//     and a minimap2-like minimizer/chaining candidate generator
//     (Mapper).
//
// # Backends and the registry
//
// Backends are a public driver-style API, as in database/sql: implement
// the Backend interface (AlignBatch, Capabilities, Stats), register a
// Factory under a name with Register, and any Engine — and every
// -backend CLI flag and the server — can run on it via WithBackendName.
// Backends() lists the registered names. Capabilities (MaxQueryLen,
// PreferredBatch, Parallelism) lets admission control and the serving
// scheduler size themselves per backend; BackendStats is the generic
// operational snapshot (Engine.BackendStats).
//
// The built-in "multi" backend is the first scale-out primitive: it
// shards one AlignBatch across child backends ("multi" defaults to
// cpu+gpu; "multi(a,b,...)" names any registered children) in
// contiguous chunks weighted by each child's Parallelism, runs the
// shards concurrently, and stitches results back in input order — so
// its output is bit-identical to any single child's, and a failure
// carries per-shard attribution (ShardError). Every implementation must
// uphold the paper's equivalence claim: same Config, same Results, bit
// for bit.
//
// Over-length queries are rejected with the typed ErrQueryTooLong
// (errors.Is-matchable), whether the limit came from WithMaxQueryLen or
// the backend's capabilities.
//
// # Serving
//
// The server subpackage (genasm/server, binary cmd/genasm-serve) exposes
// an Engine as a batching HTTP service: a dynamic batch scheduler
// coalesces many small concurrent requests into backend-sized
// AlignBatch calls under a max-latency deadline (bounded queue, 429
// backpressure), a registry indexes named references once into shared
// Mappers, an LRU cache keyed on Engine.Fingerprint short-circuits
// repeated alignments, and /metrics + /healthz + /backends report
// operational state (including the backend registry and per-shard
// composite stats). The scheduler's default batch size comes from the
// engine backend's Capabilities. /map-align responses are buffered JSON
// or incrementally streamed SAM/PAF. The full HTTP reference is
// docs/API.md; the layer map with the MapAlign data flow is
// docs/ARCHITECTURE.md.
//
// # Migrating from the pre-Engine API
//
// The original entry points remain as thin deprecated shims that
// delegate to a throwaway Engine: New/Aligner.Align is NewEngine +
// Engine.Align, the package-level AlignBatch is Engine.AlignBatch with
// WithThreads, and AlignBatchGPU is Engine.AlignBatch under
// WithBackendName("gpu") with stats from Engine.BackendStats. WithConfig
// seeds an Engine from a legacy Config during migration.
//
// # Migrating from the enum backend API
//
// The backend enum predates the registry and is deprecated in favour of
// names: WithBackend(CPU|GPU) is WithBackendName("cpu"|"gpu") (the shim
// resolves through the same registry), Engine.Backend is
// Engine.BackendName, and Engine.GPUStats is the GPU field of
// Engine.BackendStats (the shim digs it out of the snapshot, composite
// children included). Enum callers keep compiling and keep their exact
// behaviour; they just cannot name composite or third-party backends.
package genasm
