// Package genasm is a genomic sequence alignment library and
// read-mapping pipeline built around an improved GenASM algorithm
// (Lindegger et al., "Algorithmic Improvement and GPU Acceleration of
// the GenASM Algorithm", 2022).
//
// GenASM is a Bitap-based approximate string matching algorithm with
// fine-grained bit-level parallelism. This library implements the paper's
// three algorithmic improvements — entry compression (store only the
// bitwise AND of the DP edge bitvectors), early termination of error-level
// rows, and discarding of traceback-unreachable entries — which shrink the
// DP working set by an order of magnitude and let whole alignment windows
// live in on-chip memory.
//
// # The Engine
//
// All alignment runs through a genasm.Engine: a concurrency-safe,
// context-aware service constructed with functional options. The same
// configuration produces bit-identical results on either backend — the
// CPU backend pools per-goroutine aligners, the GPU backend executes the
// same kernels on a simulated SIMT device (an NVIDIA A6000 model) with a
// shared-memory / L2 / DRAM cost model.
//
//	eng, _ := genasm.NewEngine(
//		genasm.WithAlgorithm(genasm.GenASM),
//		genasm.WithBackend(genasm.CPU), // or genasm.GPU
//	)
//	res, _ := eng.Align(ctx, []byte("ACGTACGT..."), []byte("ACGTTACGT..."))
//	fmt.Println(res.Distance, res.Cigar)
//
// Batches are context-cancellable and index-aligned with their input:
//
//	results, err := eng.AlignBatch(ctx, pairs)
//
// See ExampleNewEngine and ExampleEngine_AlignBatch for runnable
// versions of both.
//
// # The read-mapping pipeline
//
// The full map-then-align pipeline (minimizer/chaining candidate
// location followed by best-candidate alignment) streams with per-item
// errors and ordered emission:
//
//	mapper, _ := genasm.NewMapper(ref)
//	eng, _ := genasm.NewEngine(genasm.WithMapper(mapper))
//	out, _ := eng.MapAlign(ctx, genasm.StreamReads(reads))
//	for m := range out {
//		if m.Err != nil || m.Unmapped { ... continue ... }
//		use(m.Result)
//	}
//
// Each MappedAlignment carries the candidate location, the total
// candidate count and the runner-up chain score, which is everything a
// consumer needs to derive SAM FLAG/POS/MAPQ. The internal/samfmt
// package does exactly that: cmd/genasm-map is the end-to-end binary
// (FASTA reference + FASTA/FASTQ reads in, SAM or PAF out), and the
// HTTP server streams the same records. See ExampleEngine_MapAlign.
//
// # Library contents
//
//   - the improved GenASM aligner (Algorithm GenASM) for short and long
//     reads, plus the unimproved MICRO'20 formulation (GenASMUnimproved)
//     and reproductions of Edlib, KSW2 and Smith-Waterman-Gotoh as
//     baselines, all behind the one Engine;
//   - a CPU backend with pooled aligners and a GPU backend running the
//     same kernels on the simulated device — selected per Engine with
//     WithBackend, bit-identical results either way;
//   - workload tooling: synthetic genome generation (GenerateGenome), a
//     PBSIM2-like read simulator (SimulateLongReads, SimulateShortReads)
//     and a minimap2-like minimizer/chaining candidate generator
//     (Mapper).
//
// # Serving
//
// The server subpackage (genasm/server, binary cmd/genasm-serve) exposes
// an Engine as a batching HTTP service: a dynamic batch scheduler
// coalesces many small concurrent requests into backend-sized
// AlignBatch calls under a max-latency deadline (bounded queue, 429
// backpressure), a registry indexes named references once into shared
// Mappers, an LRU cache keyed on Engine.Fingerprint short-circuits
// repeated alignments, and /metrics + /healthz report operational state.
// /map-align responses are buffered JSON or incrementally streamed
// SAM/PAF. The full HTTP reference is docs/API.md; the layer map with
// the MapAlign data flow is docs/ARCHITECTURE.md.
//
// # Migrating from the pre-Engine API
//
// The original entry points remain as thin deprecated shims that
// delegate to a throwaway Engine: New/Aligner.Align is NewEngine +
// Engine.Align, the package-level AlignBatch is Engine.AlignBatch with
// WithThreads, and AlignBatchGPU is Engine.AlignBatch under
// WithBackend(GPU) with stats from Engine.GPUStats. WithConfig seeds an
// Engine from a legacy Config during migration.
package genasm
