// Package genasm is a genomic sequence alignment library built around an
// improved GenASM algorithm (Lindegger et al., "Algorithmic Improvement and
// GPU Acceleration of the GenASM Algorithm", 2022).
//
// GenASM is a Bitap-based approximate string matching algorithm with
// fine-grained bit-level parallelism. This library implements the paper's
// three algorithmic improvements — entry compression (store only the
// bitwise AND of the DP edge bitvectors), early termination of error-level
// rows, and discarding of traceback-unreachable entries — which shrink the
// DP working set by an order of magnitude and let whole alignment windows
// live in on-chip memory.
//
// The library ships:
//
//   - the improved GenASM aligner (Algorithm GenASM) for short and long
//     reads, plus the unimproved MICRO'20 formulation (GenASMUnimproved)
//     and reproductions of Edlib, KSW2 and Smith-Waterman-Gotoh as
//     baselines, all behind one Aligner interface;
//   - a batch API, and a GPU batch API that executes the same kernels on a
//     simulated SIMT device (an NVIDIA A6000 model) with a shared-memory /
//     L2 / DRAM cost model;
//   - workload tooling: synthetic genome generation, a PBSIM2-like read
//     simulator, and a minimap2-like minimizer/chaining candidate
//     generator.
//
// Quick start:
//
//	a, _ := genasm.New(genasm.Config{Algorithm: genasm.GenASM})
//	res, _ := a.Align([]byte("ACGTACGT..."), []byte("ACGTTACGT..."))
//	fmt.Println(res.Distance, res.Cigar)
//
// See examples/ for complete programs and DESIGN.md / EXPERIMENTS.md for
// the paper-reproduction methodology.
package genasm
